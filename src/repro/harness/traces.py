"""Protocol trace recording and the paper's sequence figures.

The paper's Figures 2, 3 and 4 are time-sequence diagrams of the
baseline, delayed-response and IQOLB protocols.  This module replays the
figures' scenarios on the unified telemetry backbone
(:mod:`repro.telemetry`): a :class:`TraceRecorder` is simply an
in-memory :class:`~repro.telemetry.sinks.TraceSink` with filtering and
rendering helpers, attached — alongside any other sinks the caller
supplies (JSONL, Chrome trace) — to the system's
:class:`~repro.telemetry.tracer.TraceDispatcher`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cpu.ops import LL, SC, Compute, Read, Write
from repro.harness.config import SystemConfig
from repro.harness.system import System
from repro.sync.tts import TTSLock
from repro.telemetry import TelemetryEvent, TraceDispatcher, TraceSink

#: Back-compat alias: the recorder's event type is the telemetry event.
TraceEvent = TelemetryEvent


class TraceRecorder(TraceSink):
    """An in-memory sink with the filtering/rendering API tests use.

    A recorder owns a :class:`TraceDispatcher` and attaches itself as the
    first sink, so it can be used either standalone (call the hooks
    directly) or as the hub other sinks join via ``attach``/``sinks=``.
    """

    def __init__(self, sinks: Iterable[TraceSink] = ()) -> None:
        self.events: List[TelemetryEvent] = []
        self.dispatcher = TraceDispatcher()
        self.dispatcher.attach(self)
        for sink in sinks:
            self.dispatcher.attach(sink)

    # TraceSink interface -------------------------------------------------
    def emit(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    # hook signatures match CacheController.tracer and AddressBus.observer
    def controller_hook(
        self, event: str, time: int, node: int, line_addr: int, info: dict
    ) -> None:
        self.dispatcher.controller_hook(event, time, node, line_addr, info)

    def bus_hook(self, time, txn, supplier, shared, deferred) -> None:
        self.dispatcher.bus_hook(time, txn, supplier, shared, deferred)

    def filtered(
        self, line_addr: Optional[int] = None, kinds: Optional[List[str]] = None
    ) -> List[TelemetryEvent]:
        out = self.events
        if line_addr is not None:
            out = [e for e in out if e.line_addr == line_addr]
        if kinds is not None:
            wanted = set(kinds)
            out = [e for e in out if e.kind in wanted]
        return out

    def count(self, kind: str, line_addr: Optional[int] = None) -> int:
        return len(self.filtered(line_addr=line_addr, kinds=[kind]))

    def render(
        self, line_addr: Optional[int] = None, limit: Optional[int] = None
    ) -> str:
        events = self.filtered(line_addr=line_addr)
        if limit is not None:
            events = events[:limit]
        return "\n".join(event.render() for event in events)


@dataclasses.dataclass
class ScenarioResult:
    """A figure scenario's trace plus the metrics the figure depicts."""

    recorder: TraceRecorder
    system: System
    target_line: int
    summary: Dict[str, int]

    def render(self, limit: Optional[int] = None) -> str:
        return self.recorder.render(line_addr=self.target_line, limit=limit)


def _traced_system(
    policy: str,
    n_processors: int,
    sinks: Iterable[TraceSink] = (),
) -> Tuple[System, TraceRecorder]:
    recorder = TraceRecorder(sinks=sinks)
    system = System(SystemConfig(n_processors=n_processors, policy=policy))
    system.attach_telemetry(recorder.dispatcher)
    return system, recorder


def figure2_scenario(
    rmw_per_proc: int = 4, sinks: Iterable[TraceSink] = ()
) -> ScenarioResult:
    """Figure 2: traditional LL/SC sequence (2 processors).

    Both processors hold the line Shared, LL it, and race their SC
    upgrades; the loser's link is reset by the winner's invalidation and
    it must retry — two network transactions per successful RMW.
    """
    system, recorder = _traced_system("baseline", 2, sinks)
    addr = system.layout.alloc_line()
    target_line = system.amap.line_addr(addr)

    def program():
        # Warm-up read so both caches hold the line Shared, as at the top
        # of the figure.
        yield Read(addr)
        for _ in range(rmw_per_proc):
            while True:
                value = yield LL(addr, pc=0xF2)
                yield Compute(6)  # the figure's dotted "local work" gap
                ok = yield SC(addr, value + 1, pc=0xF2)
                if ok:
                    break
            yield Compute(20)

    for node in range(2):
        system.load_program(node, program())
    system.run()
    summary = {
        "final_value": system.read_word(addr),
        "expected": 2 * rmw_per_proc,
        "sc_failures": system.total("sc_fail"),
        "sc_successes": system.total("sc_success"),
        "bus_gets": system.stats.value("bus.GetS"),
        "bus_upgrades": system.stats.value("bus.Upgrade"),
        "bus_getx": system.stats.value("bus.GetX"),
        "deferrals": system.total("deferrals"),
    }
    return ScenarioResult(recorder, system, target_line, summary)


def figure3_scenario(
    n_processors: int = 3,
    rmw_per_proc: int = 4,
    sinks: Iterable[TraceSink] = (),
) -> ScenarioResult:
    """Figure 3: LL/SC with delayed response (3 processors).

    Concurrent LPRFOs build a queue; each processor's exclusive response
    is delayed until its predecessor's SC completes; nobody retries.
    """
    system, recorder = _traced_system("delayed", n_processors, sinks)
    addr = system.layout.alloc_line()
    target_line = system.amap.line_addr(addr)

    def program():
        for _ in range(rmw_per_proc):
            while True:
                value = yield LL(addr, pc=0xF3)
                yield Compute(30)  # wide LL->SC window so requests overlap
                ok = yield SC(addr, value + 1, pc=0xF3)
                if ok:
                    break
            yield Compute(10)

    for node in range(n_processors):
        system.load_program(node, program())
    system.run()
    summary = {
        "final_value": system.read_word(addr),
        "expected": n_processors * rmw_per_proc,
        "sc_failures": system.total("sc_fail"),
        "bus_lprfo": system.stats.value("bus.LPRFO"),
        "deferrals": system.total("deferrals"),
        "handoffs_at_sc": system.total("handoff_sc"),
        "queue_waits": system.total("waits_in_queue"),
    }
    return ScenarioResult(recorder, system, target_line, summary)


def figure4_scenario(
    n_processors: int = 3,
    acquires_per_proc: int = 4,
    sinks: Iterable[TraceSink] = (),
) -> ScenarioResult:
    """Figure 4: the IQOLB sequence (3 processors, lock + critical section).

    After the predictor has seen one acquire/release pair, contended
    acquires show the figure's pattern: one LPRFO per acquire, tear-off
    copies to the waiters, local spinning, and the line handed to the
    next requestor by the *release store*.
    """
    system, recorder = _traced_system("iqolb", n_processors, sinks)
    lock = TTSLock(system.layout.alloc_line())
    target_line = system.amap.line_addr(lock.addr)
    data = system.layout.alloc_line()

    def program(tid: int):
        # Training round, staggered so it is uncontended: the release
        # store teaches the predictor that this PC acquires a lock.
        yield Compute(1 + tid * 600)
        yield from lock.acquire()
        yield from lock.release()
        yield Compute((n_processors - tid) * 600)
        # Measured rounds: contended.
        for _ in range(acquires_per_proc):
            yield from lock.acquire()
            value = yield Read(data)
            yield Compute(40)  # the figure's critical section
            yield Write(data, value + 1)
            yield from lock.release()
            yield Compute(30)

    for node in range(n_processors):
        system.load_program(node, program(node))
    system.run()
    summary = {
        "cs_entries": system.read_word(data),
        "expected": n_processors * acquires_per_proc,
        "tearoffs": system.total("tearoffs_sent"),
        "handoffs_at_release": system.total("handoff_release"),
        "releases_detected": system.total("releases_detected"),
        "bus_lprfo": system.stats.value("bus.LPRFO"),
        "sc_failures": system.total("sc_fail"),
        "timeouts": system.total("timeouts"),
        "acquires": n_processors * (acquires_per_proc + 1),
    }
    return ScenarioResult(recorder, system, target_line, summary)


#: The figure scenarios by CLI name (used by ``repro trace``).
SCENARIOS = {
    "fig2": figure2_scenario,
    "fig3": figure3_scenario,
    "fig4": figure4_scenario,
}

"""Full-system builder: wires processors, caches, bus, crossbar, memory.

This is the top-level object most users touch::

    from repro import System, SystemConfig

    system = System(SystemConfig(n_processors=8, policy="iqolb"))
    system.load_program(0, my_program())
    ...
    cycles = system.run()
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.coherence.controller import CacheController
from repro.core.registry import make_interconnect, make_policy
from repro.cpu.processor import Processor
from repro.cpu.thread import Program, SimThread
from repro.engine.simulator import Simulator
from repro.engine.stats import StatsRegistry
from repro.harness.config import SystemConfig
from repro.harness.layout import MemoryLayout
from repro.interconnect.messages import MEMORY_NODE
from repro.mem.address import AddressMap
from repro.mem.cache import CacheArray
from repro.mem.hierarchy import NodeCacheHierarchy
from repro.mem.mainmemory import MainMemory


class System:
    """A simulated bus-based shared-memory multiprocessor."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        tracer: Optional[Callable[..., None]] = None,
    ) -> None:
        self.config = config if config is not None else SystemConfig()
        cfg = self.config
        self.sim = Simulator(max_cycles=cfg.max_cycles, engine=cfg.engine)
        self.stats = StatsRegistry()
        self.amap = AddressMap(cfg.line_bytes)
        self.memory = MainMemory(
            self.amap,
            first_chunk_cycles=cfg.mem_first_chunk_cycles,
            next_chunk_cycles=cfg.mem_next_chunk_cycles,
            chunk_bytes=cfg.mem_chunk_bytes,
        )
        # The directory must know whether this protocol variant keeps
        # the waiter queue alive across RFOs; probe one policy instance
        # for the protocol-wide property before building the fabric.
        probe = make_policy(cfg.policy, **cfg.policy_kwargs())
        # ``self.bus`` is the address-side fabric (AddressBus or
        # DirectoryInterconnect) and ``self.crossbar`` the data-side one
        # (Crossbar or MeshNetwork) — the controller-facing surfaces are
        # identical, so downstream code keeps the bus-era names.
        self.bus, self.crossbar = make_interconnect(
            cfg,
            self.sim,
            self.stats,
            self.memory,
            queue_retention=getattr(probe, "queue_retention", False),
        )
        # Memory "port" on the data fabric: deliveries to MEMORY_NODE
        # would be writeback data; our writebacks ride the address side
        # instead, so this receiver should never fire.
        self.crossbar.attach(MEMORY_NODE, self._memory_receiver)

        self.controllers: List[CacheController] = []
        self.processors: List[Processor] = []
        for node_id in range(cfg.n_processors):
            l1 = CacheArray.from_size(cfg.l1_size_bytes, cfg.l1_assoc, cfg.line_bytes)
            l2 = CacheArray.from_size(cfg.l2_size_bytes, cfg.l2_assoc, cfg.line_bytes)
            hierarchy = NodeCacheHierarchy(
                node_id, l1, l2, cfg.l1_hit_cycles, cfg.l2_hit_cycles, self.stats
            )
            policy = make_policy(cfg.policy, **cfg.policy_kwargs())
            controller = CacheController(
                node_id,
                self.sim,
                self.stats,
                self.amap,
                hierarchy,
                self.bus,
                self.crossbar,
                policy,
            )
            controller.tracer = tracer
            self.bus.attach(node_id, controller)
            self.crossbar.attach(node_id, controller.on_data)
            processor = Processor(
                node_id, self.sim, self.stats, issue_overhead=cfg.issue_overhead
            )
            processor.controller = controller
            processor.on_thread_done = self._thread_done
            self.controllers.append(controller)
            self.processors.append(processor)

        self.layout = MemoryLayout(self.amap)
        self._threads: Dict[int, SimThread] = {}
        self._remaining = 0
        self._next_thread_id = 0
        self.sim.diagnostic_providers.append(self._describe_stuck_state)

    # ------------------------------------------------------------------
    # Program loading and memory initialisation
    # ------------------------------------------------------------------
    def load_program(self, node_id: int, program: Program) -> SimThread:
        """Bind a generator program to a processor."""
        if node_id in self._threads:
            raise ValueError(f"processor {node_id} already has a program")
        thread = SimThread(self._next_thread_id, program)
        self._next_thread_id += 1
        self.processors[node_id].bind(thread)
        self._threads[node_id] = thread
        return thread

    def write_word(self, addr: int, value: int) -> None:
        """Initialise shared memory before the run."""
        self.memory.write_word(addr, value)

    def read_word(self, addr: int) -> int:
        """Read memory *coherently* after (or during) a run.

        Checks cache owners first so dirty data is visible.
        """
        line_addr = self.amap.line_addr(addr)
        index = self.amap.word_index(addr)
        for controller in self.controllers:
            line = controller.hierarchy.peek(line_addr)
            if line is not None and line.is_owner:
                return line.read_word(index)
        return self.memory.read_word(addr)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Run every loaded program to completion; return elapsed cycles."""
        if not self._threads:
            raise RuntimeError("no programs loaded")
        self._remaining = len(self._threads)
        for node_id in self._threads:
            self.processors[node_id].start()
        self.sim.run(until=lambda: self._remaining == 0)
        if self._remaining:
            raise RuntimeError(
                f"{self._remaining} threads never finished "
                f"(t={self.sim.now}); deadlock or livelock"
            )
        return self.sim.now

    def _thread_done(self, thread: SimThread) -> None:
        self._remaining -= 1

    def _describe_stuck_state(self) -> str:
        """Per-node controller/MSHR digest for the runaway diagnostic."""
        lines = [c.describe_state() for c in self.controllers]
        lines = [line for line in lines if line]
        if not lines:
            return "all cache controllers quiescent"
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def attach_telemetry(self, dispatcher: Any) -> Any:
        """Wire every emitter in the system to a trace dispatcher.

        ``dispatcher`` is a :class:`repro.telemetry.TraceDispatcher` (or
        anything exposing ``controller_hook``/``bus_hook``).  Returns the
        dispatcher for chaining.  Pass ``None`` to detach everything.

        Dispatch is pre-resolved: while the dispatcher has no sinks the
        emitters' hooks are ``None`` (so the per-event "anyone
        listening?" check is just the emitters' existing ``is not None``
        guard, with no call and no payload built).  Dispatchers that
        announce sink changes via ``subscribe_rewire`` keep this wiring
        current when sinks attach or detach mid-run.
        """
        previous = getattr(self, "_telemetry", None)
        if previous is not None:
            unsubscribe = getattr(previous, "unsubscribe_rewire", None)
            if unsubscribe is not None:
                unsubscribe(self._rewire_telemetry)
        self._telemetry = dispatcher
        if dispatcher is not None:
            subscribe = getattr(dispatcher, "subscribe_rewire", None)
            if subscribe is not None:
                subscribe(self._rewire_telemetry)
        self._rewire_telemetry()
        return dispatcher

    def _rewire_telemetry(self) -> None:
        """Point every emitter at the dispatcher, or at ``None`` if idle.

        An idle dispatcher (no sinks) costs the hot paths nothing: the
        emitters see ``tracer is None`` and skip building trace payloads
        entirely.
        """
        dispatcher = getattr(self, "_telemetry", None)
        active = dispatcher is not None and getattr(dispatcher, "active", True)
        controller_hook = dispatcher.controller_hook if active else None
        bus_hook = dispatcher.bus_hook if active else None
        for controller in self.controllers:
            controller.tracer = controller_hook
        self.bus.observer = bus_hook
        if hasattr(self.bus, "tracer"):
            # The directory emits its own protocol events (lookups,
            # forwards, deferral at home) through the controller channel.
            self.bus.tracer = controller_hook

    def _memory_receiver(self, msg: Any) -> None:  # pragma: no cover
        raise RuntimeError(f"unexpected crossbar delivery to memory: {msg}")

    # ------------------------------------------------------------------
    # Metrics helpers
    # ------------------------------------------------------------------
    def bus_transactions(self) -> int:
        """Coherence transactions resolved, whichever fabric ran them."""
        return self.stats.value("bus.transactions") + self.stats.value(
            "dir.transactions"
        )

    def total(self, suffix: str) -> int:
        """Aggregate a per-node counter, e.g. ``total('sc_fail')``."""
        return self.stats.sum_matching(f".{suffix}")

"""Shared-memory layout allocator for workloads and tests.

A simple bump allocator over the simulated address space, with the
placement controls that matter for this paper: same-line placement (for
collocation experiments) and line-separated placement (to avoid false
sharing between unrelated variables).
"""

from __future__ import annotations

from typing import List

from repro.mem.address import WORD_BYTES, AddressMap


class MemoryLayout:
    """Allocates word addresses in the simulated shared memory."""

    def __init__(self, amap: AddressMap, base: int = 0x1_0000) -> None:
        self.amap = amap
        if base % amap.line_bytes:
            raise ValueError("layout base must be line-aligned")
        self._next = base

    def alloc_word(self) -> int:
        """Next word, packed sequentially (may share lines)."""
        addr = self._next
        self._next += WORD_BYTES
        return addr

    def alloc_line(self) -> int:
        """A fresh, exclusively-held cache line; returns its first word."""
        self._align_to_line()
        addr = self._next
        self._next += self.amap.line_bytes
        return addr

    def alloc_words_in_line(self, count: int) -> List[int]:
        """``count`` words guaranteed to share one line (collocation)."""
        if count > self.amap.words_per_line:
            raise ValueError(
                f"{count} words cannot share a {self.amap.line_bytes}-byte line"
            )
        self._align_to_line()
        addrs = [self._next + i * WORD_BYTES for i in range(count)]
        self._next += self.amap.line_bytes
        return addrs

    def alloc_lines(self, count: int) -> List[int]:
        """``count`` line-separated words (no false sharing)."""
        return [self.alloc_line() for _ in range(count)]

    def alloc_array(self, n_words: int) -> List[int]:
        """A dense array of words starting on a line boundary."""
        self._align_to_line()
        addrs = [self._next + i * WORD_BYTES for i in range(n_words)]
        self._next += n_words * WORD_BYTES
        return addrs

    def _align_to_line(self) -> None:
        line = self.amap.line_bytes
        self._next = (self._next + line - 1) // line * line

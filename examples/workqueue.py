#!/usr/bin/env python3
"""Producer/consumer work queue under each primitive.

The explicit version of the pattern that makes Raytrace and Radiosity
synchronization-bound in the paper: one bounded queue, producers pushing
task ids, consumers popping them, all serialized by one lock.  Prints
end-to-end completion time and a traffic summary per primitive, plus the
full protocol report for IQOLB.
"""

from repro.harness.config import SystemConfig
from repro.harness.experiment import PRIMITIVES, run_workload
from repro.harness.report import render_report
from repro.harness.tables import render_table
from repro.workloads.pipeline import ProducerConsumer


def run(primitive: str, n_processors: int = 8):
    policy, lock_kind = PRIMITIVES[primitive]
    config = SystemConfig(n_processors=n_processors, policy=policy)
    workload = ProducerConsumer(
        lock_kind=lock_kind,
        items_per_producer=15,
        queue_capacity=6,
        produce_cycles=80,
        consume_cycles=120,
    )
    return run_workload(workload, config, primitive=primitive)


def main() -> None:
    primitives = ["tts", "mcs", "delayed", "iqolb", "iqolb+gen", "qolb"]
    results = {prim: run(prim) for prim in primitives}
    base = results["tts"].cycles
    rows = [
        (
            prim,
            r.cycles,
            f"{base / r.cycles:.2f}x",
            r.bus_transactions,
            r.stat("tearoffs_sent"),
        )
        for prim, r in results.items()
    ]
    print(
        render_table(
            ["primitive", "cycles", "vs TTS", "bus txns", "tearoffs"],
            rows,
            title="Bounded work queue: 4 producers + 4 consumers, 60 items",
        )
    )
    print()
    print(render_report(results["iqolb"]))


if __name__ == "__main__":
    main()

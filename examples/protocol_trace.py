#!/usr/bin/env python3
"""Print annotated protocol traces for the paper's sequence figures.

Replays the scenarios of Figures 2, 3 and 4 and prints the recorded
event streams for the contended line, so you can watch the mechanisms
work: the baseline's invalidate-and-retry, the delayed-response queue,
and IQOLB's tear-offs, local spinning and release-store hand-off.
"""

from repro.harness.diagram import render_sequence_diagram
from repro.harness.traces import (
    figure2_scenario,
    figure3_scenario,
    figure4_scenario,
)


def show(title: str, result, n_processors: int, limit: int = 60) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(
        render_sequence_diagram(
            result.recorder, result.target_line, n_processors, limit=limit
        )
    )
    print("-" * 72)
    for key, value in result.summary.items():
        print(f"  {key}: {value}")
    print()


def main() -> None:
    show(
        "Figure 2 — traditional LL/SC: shared read, upgrade race, forced retry",
        figure2_scenario(rmw_per_proc=2),
        2,
    )
    show(
        "Figure 3 — delayed response: LPRFO queue, delayed exclusive responses",
        figure3_scenario(rmw_per_proc=2),
        3,
    )
    show(
        "Figure 4 — IQOLB: tear-offs, local spinning, hand-off at release",
        figure4_scenario(acquires_per_proc=2),
        3,
        limit=90,
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Lock hand-off scaling: throughput of one contended lock, 2-32 CPUs.

Reproduces the classic synchronization-scaling experiment behind the
paper's motivation: as processors are added to a contended test&test&set
lock, invalidation storms make each hand-off *more* expensive, while the
queue-based schemes keep the hand-off cost flat (one line transfer).

Prints cycles-per-acquire for each primitive at each machine size.
"""

from repro import System, SystemConfig
from repro.harness.experiment import PRIMITIVES
from repro.harness.tables import render_table
from repro.workloads.micro import NullCriticalSection


def cycles_per_acquire(primitive: str, n_processors: int, acquires: int = 15):
    policy, lock_kind = PRIMITIVES[primitive]
    system = System(SystemConfig(n_processors=n_processors, policy=policy))
    workload = NullCriticalSection(
        lock_kind=lock_kind, acquires_per_proc=acquires, think_cycles=60
    )
    workload.build(system)
    cycles = system.run()
    workload.verify(system)
    return cycles / (n_processors * acquires)


def main() -> None:
    primitives = ["tts", "ticket", "mcs", "delayed", "iqolb", "qolb"]
    sizes = [2, 4, 8, 16, 32]
    rows = []
    for primitive in primitives:
        row = [primitive]
        for size in sizes:
            row.append(f"{cycles_per_acquire(primitive, size):.0f}")
        rows.append(row)
    print(
        render_table(
            ["primitive"] + [f"{s}p" for s in sizes],
            rows,
            title="Cycles per lock hand-off (null critical section)",
        )
    )
    print(
        "\nTTS degrades super-linearly with contention; the hardware-queue\n"
        "schemes (qolb, iqolb) stay nearly flat, as the paper argues."
    )


if __name__ == "__main__":
    main()

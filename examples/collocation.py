#!/usr/bin/env python3
"""Collocation: protected data in the lock's cache line (paper §2, §6).

QOLB's queue transfer carries the whole line, so collocating protected
data with the lock makes the data ride along for free — the effect the
paper's §6 proposes to generalize ("Generalized implicit QOLB").  This
example measures the same critical section with the data collocated
vs. placed in separate lines, under TTS, IQOLB and QOLB.
"""

from repro import System, SystemConfig
from repro.harness.experiment import PRIMITIVES
from repro.harness.tables import render_table
from repro.workloads.micro import CollocatedCriticalSection, NullCriticalSection


def run(primitive: str, collocated: bool, n_processors: int = 16) -> int:
    policy, lock_kind = PRIMITIVES[primitive]
    system = System(SystemConfig(n_processors=n_processors, policy=policy))
    if collocated:
        workload = CollocatedCriticalSection(
            lock_kind=lock_kind, acquires_per_proc=15, think_cycles=80
        )
    else:
        workload = NullCriticalSection(
            lock_kind=lock_kind, acquires_per_proc=15, think_cycles=80
        )
    workload.build(system)
    cycles = system.run()
    workload.verify(system)
    return cycles


def main() -> None:
    rows = []
    for primitive in ("tts", "iqolb", "qolb"):
        separate = run(primitive, collocated=False)
        collocated = run(primitive, collocated=True)
        rows.append(
            (
                primitive,
                separate,
                collocated,
                f"{separate / collocated:.2f}x",
            )
        )
    print(
        render_table(
            ["primitive", "separate-line CS", "collocated CS", "benefit"],
            rows,
            title="Collocation benefit, 16 processors (cycles, lower is better)",
        )
    )
    print(
        "\nQueue-based primitives turn collocation into a free ride for the\n"
        "protected data; TTS barely benefits because the line ping-pongs\n"
        "during the spin anyway."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: run one contended lock under every protocol of the paper.

Builds an 8-processor bus-based system, runs the same test&test&set
program under each protocol policy from the paper's Figure 1 taxonomy
(plus explicit QOLB), and prints parallel-section cycles, bus
transactions, and SC failure counts — the headline effect of the paper in
one table: IQOLB runs *unchanged TTS software* at QOLB-class speed.
"""

from repro import System, SystemConfig
from repro.cpu.ops import Compute, Read, Write
from repro.harness.tables import render_table
from repro.sync import QolbLock, TTSLock


def worker(lock, counter, iterations):
    """One thread: acquire, bump a shared counter, release, think."""
    for _ in range(iterations):
        yield from lock.acquire()
        value = yield Read(counter)
        yield Compute(10)
        yield Write(counter, value + 1)
        yield from lock.release()
        yield Compute(120)


def run(policy: str, n_processors: int = 8, iterations: int = 25):
    system = System(SystemConfig(n_processors=n_processors, policy=policy))
    lock_cls = QolbLock if policy == "qolb" else TTSLock
    lock = lock_cls(system.layout.alloc_line())
    counter = system.layout.alloc_line()
    for node in range(n_processors):
        system.load_program(node, worker(lock, counter, iterations))
    cycles = system.run()
    final = system.read_word(counter)
    assert final == n_processors * iterations, "mutual exclusion violated!"
    return cycles, system.bus_transactions(), system.total("sc_fail")


def main() -> None:
    policies = [
        "baseline",
        "aggressive",
        "delayed",
        "delayed+retention",
        "iqolb",
        "iqolb+retention",
        "qolb",
    ]
    rows = []
    base_cycles = None
    for policy in policies:
        cycles, bus_txns, sc_fails = run(policy)
        if base_cycles is None:
            base_cycles = cycles
        rows.append(
            (policy, cycles, f"{base_cycles / cycles:.2f}x", bus_txns, sc_fails)
        )
    print(
        render_table(
            ["protocol", "cycles", "speedup", "bus txns", "SC fails"],
            rows,
            title="Contended TTS lock, 8 processors, 25 acquires each",
        )
    )
    print(
        "\nNote: every row except 'qolb' runs the *identical* TTS program —\n"
        "the speedup comes purely from the protocol-side mechanisms\n"
        "(speculation and insertion of delays)."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Watch the IQOLB lock predictor learn (paper §3.4).

A mixed program interleaves a real lock (LL/SC acquire ... release
store) with a plain Fetch&Inc counter.  The predictor must learn that
the lock-acquire PC is a lock (hold the line until the release) while
the counter PC stays classified as Fetch&Phi (forward right after SC).

The script prints each node's predictor state and the protocol-side
evidence: tear-offs go to lock waiters, while counter deferrals are
released at SC (handoff_sc) rather than at a release store.
"""

from repro import System, SystemConfig
from repro.cpu.ops import Compute, Read, Write
from repro.sync import TTSLock, fetch_and_add
from repro.sync.primitives import synthetic_pc


def worker(lock, counter, shared, iterations):
    for _ in range(iterations):
        # A genuine critical section...
        yield from lock.acquire()
        value = yield Read(shared)
        yield Compute(30)
        yield Write(shared, value + 1)
        yield from lock.release()
        # ...and a plain atomic increment, no lock semantics.
        yield from fetch_and_add(counter, 1, pc_label="demo.count")
        yield Compute(80)


def main() -> None:
    n = 8
    system = System(SystemConfig(n_processors=n, policy="iqolb"))
    lock = TTSLock(system.layout.alloc_line())
    counter = system.layout.alloc_line()
    shared = system.layout.alloc_line()
    for node in range(n):
        system.load_program(node, worker(lock, counter, shared, 20))
    cycles = system.run()

    print(f"ran {cycles} cycles; counter={system.read_word(counter)}, "
          f"protected={system.read_word(shared)} (both should be {n * 20})")
    print()
    acquire_pc = lock.pc_acquire
    count_pc = synthetic_pc("demo.count")
    print(f"TTS acquire PC = {acquire_pc:#x}, Fetch&Inc PC = {count_pc:#x}")
    for controller in system.controllers:
        predictor = controller.policy.predictor
        print(
            f"P{controller.node_id}: predicts lock(acquire)="
            f"{predictor.predict_lock(acquire_pc)}, "
            f"lock(fetch&inc)={predictor.predict_lock(count_pc)}, "
            f"table={predictor.stats()}"
        )
    print()
    print(f"tear-offs sent (lock waiters):        {system.total('tearoffs_sent')}")
    print(f"hand-offs at release store (locks):   {system.total('handoff_release')}")
    print(f"hand-offs at SC (Fetch&Phi):          {system.total('handoff_sc')}")
    print(f"release stores recognized:            {system.total('releases_detected')}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Run the synthetic SPLASH-2 suite and print the paper's Table 3.

This is the paper's headline experiment (paper §5): five applications on
a 32-processor system under TTS, QOLB and IQOLB.  Expect a couple of
minutes of wall time — the contended TTS runs simulate tens of millions
of coherence events.

Usage::

    python examples/splash_suite.py [n_processors] [app ...]

e.g. ``python examples/splash_suite.py 16 raytrace radiosity`` for a
quicker look.
"""

import sys

from repro.harness.experiment import table3
from repro.harness.tables import render_table3
from repro.workloads.splash import APP_ORDER

PAPER_TABLE3 = {
    "barnes": (7.5, 1.06, 1.06),
    "ocean": (6.0, 1.54, 1.52),
    "radiosity": (2.5, 6.37, 6.37),
    "raytrace": (1.5, 11.01, 10.75),
    "water-nsq": (18.1, 1.06, 1.06),
}


def main() -> None:
    n_processors = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    apps = sys.argv[2:] or APP_ORDER
    rows = table3(n_processors=n_processors, apps=apps)
    print(render_table3(rows, n_processors=n_processors))
    if n_processors == 32:
        print("\nPaper's Table 3 for comparison:")
        for app in apps:
            absolute, qolb, iqolb = PAPER_TABLE3[app]
            print(f"  {app:10s} TTS ({absolute})  QOLB {qolb}  IQOLB {iqolb}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Perf-regression gate for the event-engine fast path.

Reads the ``BENCH_directory_scaling`` summaries produced by running the
scaling bench under both engines (``--engine fast`` / ``--engine
reference``) and enforces, against the checked-in
``results/PERF_baseline.json``:

* **equivalence** — for every cell present in both summaries, the two
  engines produced identical ``cycles``, ``bus_transactions`` and
  ``events_fired`` (the bit-identical-oracle contract, proven in CI on
  every run);
* **determinism** — per-cell ``events_fired`` matches the baseline
  exactly (event counts are host-independent; a mismatch means the
  workload or protocol changed and the baseline needs ``--update``);
* **throughput** — the fast engine's aggregate speedup over the
  reference engine (total events / total host seconds, fast divided by
  reference) has not regressed more than ``--tolerance`` (default 20%)
  below the baseline's recorded speedup.  The *ratio* is gated rather
  than raw events/host-second so the check is stable across runner
  hardware generations; absolute numbers are still reported.

Exit status is non-zero on any failure.  ``--update`` rewrites the
baseline from the current measurements instead of gating.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional

BASELINE_SCHEMA = "repro-perf-baseline/1"

#: summary fields that must be bit-identical between the two engines
EQUIVALENCE_FIELDS = ("cycles", "bus_transactions", "events_fired")


def load_cells(path: str) -> Dict[str, Dict[str, Any]]:
    """Index a metrics summary's cells by their joined key."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return {"/".join(map(str, cell["key"])): cell for cell in payload["cells"]}


def aggregate(cells: Dict[str, Dict[str, Any]]) -> Dict[str, float]:
    """Total events and host seconds across a summary's cells."""
    events = sum(cell.get("events_fired", 0) for cell in cells.values())
    host_s = sum(cell.get("wall_time_s", 0.0) for cell in cells.values())
    return {
        "events": events,
        "host_s": round(host_s, 6),
        "events_per_host_s": round(events / host_s, 1) if host_s > 0 else 0.0,
    }


def build_baseline(
    fast: Dict[str, Dict[str, Any]],
    reference: Dict[str, Dict[str, Any]],
    tolerance: float,
) -> Dict[str, Any]:
    agg_fast = aggregate(fast)
    agg_ref = aggregate(reference)
    speedup = (
        agg_fast["events_per_host_s"] / agg_ref["events_per_host_s"]
        if agg_ref["events_per_host_s"]
        else 0.0
    )
    cells = {}
    for key in sorted(fast):
        cell = fast[key]
        ref_cell = reference.get(key, {})
        cells[key] = {
            "events_fired": cell.get("events_fired", 0),
            "cycles": cell.get("cycles", 0),
            "fast_events_per_host_s": round(cell.get("events_per_host_s", 0.0), 1),
            "reference_events_per_host_s": round(
                ref_cell.get("events_per_host_s", 0.0), 1
            ),
        }
    return {
        "schema": BASELINE_SCHEMA,
        "tolerance": tolerance,
        "aggregate": {
            "fast": agg_fast,
            "reference": agg_ref,
            "speedup": round(speedup, 3),
        },
        "cells": cells,
    }


def record_diff(diffs, check, cell, field, expected, got) -> None:
    """Accumulate one expected-vs-got divergence for the failure report."""
    if diffs is not None:
        diffs.append(
            {
                "check": check,
                "cell": cell,
                "field": field,
                "expected": expected,
                "got": got,
            }
        )


def print_cell_diffs(diffs, file=None) -> None:
    """Render accumulated divergences as an aligned per-cell diff table,
    so a CI log shows *which* cells drifted and by how much without
    re-running the bench locally."""
    if not diffs:
        return
    out = file if file is not None else sys.stderr
    rows = []
    for diff in diffs:
        expected, got = diff["expected"], diff["got"]
        if isinstance(expected, (int, float)) and expected:
            delta = f"{(got - expected) / expected:+.2%}"
        else:
            delta = "n/a"
        rows.append(
            (
                diff["check"],
                diff["cell"],
                diff["field"],
                str(expected),
                str(got),
                delta,
            )
        )
    headers = ("check", "cell", "field", "expected", "got", "delta")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    print("per-cell diff (expected vs. got):", file=out)
    print(
        "  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        file=out,
    )
    for row in rows:
        print(
            "  " + "  ".join(v.ljust(w) for v, w in zip(row, widths)),
            file=out,
        )


def check_equivalence(fast, reference, failures, diffs=None) -> None:
    for key in sorted(set(fast) & set(reference)):
        for field in EQUIVALENCE_FIELDS:
            a, b = fast[key].get(field), reference[key].get(field)
            if a != b:
                failures.append(
                    f"equivalence: cell {key} {field} differs between "
                    f"engines (fast={a}, reference={b})"
                )
                record_diff(diffs, "equivalence", key, field, b, a)
    missing = set(fast) ^ set(reference)
    for key in sorted(missing):
        failures.append(
            f"equivalence: cell {key} present under only one engine"
        )


def check_baseline(
    fast, reference, baseline, tolerance, failures, diffs=None
) -> None:
    for key, expected in sorted(baseline.get("cells", {}).items()):
        cell = fast.get(key)
        if cell is None:
            failures.append(f"determinism: baseline cell {key} not measured")
            continue
        got = cell.get("events_fired", 0)
        want = expected["events_fired"]
        if got != want:
            failures.append(
                f"determinism: cell {key} fired {got} events, baseline "
                f"says {want} (workload changed? re-run with --update)"
            )
            record_diff(diffs, "determinism", key, "events_fired", want, got)
    base_speedup = baseline.get("aggregate", {}).get("speedup", 0.0)
    if not base_speedup:
        return
    agg_fast = aggregate(fast)
    agg_ref = aggregate(reference)
    if not agg_ref["events_per_host_s"]:
        failures.append("throughput: reference summary has no host seconds")
        return
    speedup = agg_fast["events_per_host_s"] / agg_ref["events_per_host_s"]
    floor = base_speedup * (1.0 - tolerance)
    verdict = "OK" if speedup >= floor else "FAIL"
    print(
        f"throughput: fast {agg_fast['events_per_host_s']:.0f} ev/s, "
        f"reference {agg_ref['events_per_host_s']:.0f} ev/s -> "
        f"speedup {speedup:.2f}x (baseline {base_speedup:.2f}x, "
        f"floor {floor:.2f}x) {verdict}"
    )
    if speedup < floor:
        failures.append(
            f"throughput: fast-engine speedup {speedup:.2f}x regressed "
            f"below {floor:.2f}x ({tolerance:.0%} under the baseline's "
            f"{base_speedup:.2f}x)"
        )


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fast", help="summary JSON from --engine fast")
    parser.add_argument("reference", help="summary JSON from --engine reference")
    parser.add_argument(
        "--baseline",
        default="results/PERF_baseline.json",
        help="checked-in perf baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional speedup regression "
        "(default: the baseline's recorded tolerance, else 0.20)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current measurements",
    )
    parser.add_argument(
        "--equivalence-only",
        action="store_true",
        help="check only fast-vs-reference equivalence "
        "(for full-budget runs with no committed baseline)",
    )
    args = parser.parse_args(argv)

    fast = load_cells(args.fast)
    reference = load_cells(args.reference)
    failures: list = []
    diffs: list = []

    check_equivalence(fast, reference, failures, diffs)
    print(
        f"equivalence: {len(set(fast) & set(reference))} cell(s) compared "
        f"across {len(EQUIVALENCE_FIELDS)} fields"
    )

    if args.update:
        if failures:
            for failure in failures:
                print(f"FAIL {failure}", file=sys.stderr)
            print_cell_diffs(diffs)
            print("refusing to update baseline from diverging engines",
                  file=sys.stderr)
            return 1
        tolerance = args.tolerance if args.tolerance is not None else 0.20
        baseline = build_baseline(fast, reference, tolerance)
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        agg = baseline["aggregate"]
        print(
            f"baseline updated: {args.baseline} "
            f"(speedup {agg['speedup']:.2f}x over {len(baseline['cells'])} "
            f"cell(s), tolerance {tolerance:.0%})"
        )
        return 0

    if not args.equivalence_only:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        if baseline.get("schema") != BASELINE_SCHEMA:
            failures.append(
                f"baseline schema {baseline.get('schema')!r} != "
                f"{BASELINE_SCHEMA!r}"
            )
        else:
            tolerance = (
                args.tolerance
                if args.tolerance is not None
                else baseline.get("tolerance", 0.20)
            )
            check_baseline(
                fast, reference, baseline, tolerance, failures, diffs
            )

    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        print_cell_diffs(diffs)
        return 1
    print("perf gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Wall-time budget gate for a test command.

Runs the command after ``--``, measures its wall time, and fails if it
exceeds the budget committed in a JSON file.  The tier-1 suite is the
merge gate for every PR, so its wall time is a shared resource: a
change that silently doubles it taxes every future push.  This tool
makes that regression loud.

Usage::

    python tools/time_budget.py --budget results/TIER1_budget.json -- \
        env PYTHONPATH=src python -m pytest -x -q

The budget file commits the threshold next to the suite it governs::

    {"budget_seconds": 300, "suite": "tier-1"}

Exit status: the command's own status if it fails (a broken suite is a
broken suite, not a slow one); 1 if the command passed but blew the
budget; 0 otherwise.  ``--report`` optionally writes the measurement as
JSON for artifact upload.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--budget",
        required=True,
        help="JSON file with a budget_seconds threshold",
    )
    parser.add_argument(
        "--report",
        help="optional path to write the measurement as JSON",
    )
    parser.add_argument(
        "command",
        nargs=argparse.REMAINDER,
        help="command to run (prefix with --)",
    )
    args = parser.parse_args(argv)

    command = args.command
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        parser.error("no command given after --")

    with open(args.budget) as handle:
        budget = json.load(handle)
    budget_s = float(budget["budget_seconds"])

    start = time.perf_counter()
    status = subprocess.call(command)
    elapsed = time.perf_counter() - start

    within = elapsed <= budget_s
    print(
        f"wall time: {elapsed:.1f}s of {budget_s:.0f}s budget "
        f"({budget.get('suite', 'suite')}) -> "
        f"{'OK' if within else 'OVER BUDGET'}",
        file=sys.stderr,
    )
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(
                {
                    "suite": budget.get("suite"),
                    "budget_seconds": budget_s,
                    "elapsed_seconds": round(elapsed, 3),
                    "within_budget": within,
                    "command_status": status,
                },
                handle,
                indent=2,
            )
            handle.write("\n")

    if status != 0:
        return status
    return 0 if within else 1


if __name__ == "__main__":
    sys.exit(main())

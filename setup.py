"""Legacy setup shim.

Offline environments without the ``wheel`` package cannot build PEP 660
editable wheels; this shim lets ``pip install -e . --no-build-isolation``
(or ``python setup.py develop``) fall back to the classic editable path.
"""

from setuptools import setup

setup()
